(* Read mapping: the paper's motivating workload (§I) — locate short DNA
   reads in a genome despite polymorphisms and sequencing errors.

   We synthesize a repeat-bearing genome, persist its index to disk
   (index once, map many runs), simulate wgsim-style reads on both
   strands with 2% substitution errors, and map them with the batch
   mapper on top of Algorithm A.

     dune exec examples/read_mapping.exe                                 *)

let () =
  let genome =
    Dna.Genome_gen.generate { Dna.Genome_gen.default with size = 200_000; seed = 2024 }
  in
  Printf.printf "genome: %d bp (synthetic, 30%% repeats)\n" (Dna.Sequence.length genome);

  (* Index once and persist; later runs can [Kmismatch.load_index]. *)
  let t0 = Unix.gettimeofday () in
  let index = Core.Kmismatch.of_sequence genome in
  let index_path = Filename.temp_file "kmm_example" ".fmi" in
  Core.Kmismatch.save_index index index_path;
  Printf.printf "index built in %.2fs, saved as %s (%d bytes ~ n/4)\n"
    (Unix.gettimeofday () -. t0)
    index_path
    (Unix.stat index_path).Unix.st_size;
  let index = Core.Kmismatch.load_index index_path in
  Sys.remove index_path;

  let reads =
    Dna.Read_sim.simulate
      { Dna.Read_sim.count = 200; len = 100; error_rate = 0.02;
        both_strands = true; seed = 5 }
      genome
  in
  Printf.printf "reads:  %d x 100 bp, 2%% error rate, both strands\n\n" (List.length reads);

  let k = 5 in
  let inputs =
    List.map (fun r -> (r.Dna.Read_sim.id, Dna.Sequence.to_string r.Dna.Read_sim.seq)) reads
  in
  let t0 = Unix.gettimeofday () in
  let hits, summary = Core.Mapper.map_reads index ~reads:inputs ~k in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "mapped %d/%d reads (%d unique, %d ambiguous) in %.2fs (k=%d)\n"
    summary.Core.Mapper.mapped summary.Core.Mapper.total summary.Core.Mapper.unique
    summary.Core.Mapper.ambiguous dt k;

  (* Accuracy against the simulator's ground truth. *)
  let at_origin =
    List.length
      (List.filter
         (fun r ->
           List.exists
             (fun h ->
               h.Core.Mapper.read_id = r.Dna.Read_sim.id
               && h.Core.Mapper.pos = r.Dna.Read_sim.origin)
             hits)
         reads)
  in
  let over_budget =
    List.length (List.filter (fun r -> r.Dna.Read_sim.errors > k) reads)
  in
  Printf.printf "reads recovered at their true origin: %d/%d\n" at_origin (List.length reads);
  Printf.printf "reads with more than %d injected errors (unmappable by design): %d\n" k
    over_budget;

  (* Best-hit selection for a quick look at the first few alignments. *)
  let best = Core.Mapper.best_hits hits in
  print_endline "\nfirst alignments (read, pos, strand, mismatches):";
  List.iteri
    (fun i h -> if i < 5 then print_string ("  " ^ Core.Mapper.to_tsv [ h ]))
    best
