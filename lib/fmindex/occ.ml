(* Packed-rank Occ: interleaved popcount blocks over a 2-bit BWT payload.
   See occ.mli for the layout contract.  The block buffer is a Storage.t
   (heap or mmap'd format-v4 section); the kernels below read it through
   Bigarray.Array1.unsafe_get, which compiles to the same inline load a
   Bytes access did. *)

module A1 = Bigarray.Array1

let sigma = Dna.Alphabet.sigma

(* ------------------------------------------------------------------ *)
(* Packed-count kernel                                                  *)

(* tbl.(byte) packs, in one int, the number of lanes of [byte] equal to
   lane code 1 (bits 0..15), 2 (bits 16..31) and 3 (bits 32..47).  The
   count of lane code 0 is derived as [lanes_scanned - c1 - c2 - c3],
   which also makes zero-padding lanes harmless.  Accumulating the table
   over up to 16383 bytes (the largest possible in-block remainder)
   keeps every 16-bit field below 65536, so a block scan is one load and
   one add per 4 bases with no carries and no allocation.

   The table itself lives in Packed_text (the verification kernel
   derives its per-byte mismatch table from it); this alias keeps the
   scan kernels below unchanged. *)
let tbl = Packed_text.lane_count_table

(* tmask.(r) keeps only the first r lanes of a byte (r in 0..3). *)
let tmask = [| 0x00; 0x03; 0x0f; 0x3f |]

(* smask.(rem * 8 + j) masks byte [j] of a 32-lane block payload down to
   its lanes strictly below [rem]: 0xff for fully covered bytes, a
   [tmask] prefix for the straddling byte, 0x00 beyond.  This lets the
   default-geometry scan touch all 8 payload bytes unconditionally — a
   fixed-trip, branch-free loop — instead of a variable-length loop whose
   trip count the branch predictor cannot guess.  (Masked-off bytes count
   as lane code 0, which the code-0 derivation already ignores.) *)
let smask =
  let b = Bytes.create (32 * 8) in
  for rem = 0 to 31 do
    for j = 0 to 7 do
      let m =
        if rem >= 4 * (j + 1) then 0xff
        else if rem <= 4 * j then 0x00
        else tmask.(rem - (4 * j))
      in
      Bytes.set b ((rem * 8) + j) (Char.chr m)
    done
  done;
  b

(* Packed lane counts of the first [rem] (1..31) lanes of the 32-lane
   block payload at [pay]: eight independent masked table lookups, no
   data-dependent branches. *)
let[@inline] scan32 (data : Storage.t) pay rem =
  let mo = rem lsl 3 in
  (* Spelled out term by term: helper lambdas here would closure-convert
     (and allocate) on every call without flambda. *)
  Array.unsafe_get tbl
    (A1.unsafe_get data pay land Char.code (Bytes.unsafe_get smask mo))
  + Array.unsafe_get tbl
      (A1.unsafe_get data (pay + 1) land Char.code (Bytes.unsafe_get smask (mo + 1)))
  + Array.unsafe_get tbl
      (A1.unsafe_get data (pay + 2) land Char.code (Bytes.unsafe_get smask (mo + 2)))
  + Array.unsafe_get tbl
      (A1.unsafe_get data (pay + 3) land Char.code (Bytes.unsafe_get smask (mo + 3)))
  + Array.unsafe_get tbl
      (A1.unsafe_get data (pay + 4) land Char.code (Bytes.unsafe_get smask (mo + 4)))
  + Array.unsafe_get tbl
      (A1.unsafe_get data (pay + 5) land Char.code (Bytes.unsafe_get smask (mo + 5)))
  + Array.unsafe_get tbl
      (A1.unsafe_get data (pay + 6) land Char.code (Bytes.unsafe_get smask (mo + 6)))
  + Array.unsafe_get tbl
      (A1.unsafe_get data (pay + 7) land Char.code (Bytes.unsafe_get smask (mo + 7)))

(* Little-endian uint16 at [o], no bounds check (offsets are computed
   from validated geometry). *)
let[@inline] u16 (data : Storage.t) o =
  A1.unsafe_get data o lor (A1.unsafe_get data (o + 1) lsl 8)

let set_u16 (data : Storage.t) o v =
  A1.unsafe_set data o (v land 0xff);
  A1.unsafe_set data (o + 1) ((v lsr 8) land 0xff)

(* Pull lane code [d]'s count out of a packed scan result [s] covering
   [rem] lanes.  Code 0 is the complement of the three stored fields; it
   is spliced into bits 0..15 of a four-field word so the selection is a
   data-independent shift instead of a 25%-taken branch on [d].  (Fields
   are < 2^14, so [s lsl 16] stays within OCaml's 63 tagged bits.) *)
let[@inline] extract s d rem =
  let c0 =
    rem - ((s land 0xffff) + ((s lsr 16) land 0xffff) + ((s lsr 32) land 0xffff))
  in
  ((c0 lor (s lsl 16)) lsr (d * 16)) land 0xffff

(* ------------------------------------------------------------------ *)
(* Structure                                                            *)

type t = {
  req_rate : int;  (* requested checkpoint spacing, persisted *)
  bl : int;  (* block size in lanes: power of two, 32..65536 *)
  bshift : int;  (* log2 bl *)
  sshift : int;  (* log2 (blocks per superblock) = 16 - bshift *)
  stride : int;  (* bytes per block = 8 + bl/4 *)
  data : Storage.t;  (* interleaved counts + payload, heap or mmap'd *)
  super : int array;  (* absolute counts, 4 per superblock *)
  sentinels : int array;  (* sorted BWT rows holding '$' *)
  len : int;  (* BWT length, sentinels included *)
  plen : int;  (* payload lanes = len - #sentinels *)
  totals : int array;  (* occurrences of each of the sigma codes *)
}

let quantize rate =
  if rate <= 0 then invalid_arg "Occ.make: rate must be positive";
  let r = min rate 65536 in
  let bl = ref 32 in
  while !bl < r do
    bl := !bl * 2
  done;
  !bl

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let sent_before_scan s n i =
  let j = ref 0 in
  while !j < n && Array.unsafe_get s !j < i do
    incr j
  done;
  !j

let[@inline] sent_before t i =
  (* The sentinel table is almost always a singleton; specialise that
     case so hot callers pay one compare, not a loop. *)
  let s = t.sentinels in
  match Array.length s with
  | 1 -> if Array.unsafe_get s 0 < i then 1 else 0
  | 0 -> 0
  | n -> sent_before_scan s n i

(* Generic in-block scan for geometries larger than the 32-lane default:
   packed lane counts of the first [rem] lanes of the payload at [pay]. *)
let scan_slow (data : Storage.t) pay rem =
  let fb = rem lsr 2 and tail = rem land 3 in
  let s = ref 0 in
  for j = 0 to fb - 1 do
    s := !s + Array.unsafe_get tbl (A1.unsafe_get data (pay + j))
  done;
  if tail <> 0 then
    s := !s + Array.unsafe_get tbl (A1.unsafe_get data (pay + fb) land tmask.(tail));
  !s

(* Count of lane code d (0..3) in the packed payload prefix [0, p). *)
let packed_rank t d p =
  let b = p lsr t.bshift in
  let off = b * t.stride in
  let base =
    Array.unsafe_get t.super (((b lsr t.sshift) * 4) + d) + u16 t.data (off + (2 * d))
  in
  let rem = p land (t.bl - 1) in
  if t.bshift = 5 then base + extract (scan32 t.data (off + 8) rem) d rem
  else if rem = 0 then base
  else base + extract (scan_slow t.data (off + 8) rem) d rem

let rank t c i =
  if c < 0 || c >= sigma then invalid_arg "Occ.rank: bad character code";
  if i < 0 || i > t.len then invalid_arg "Occ.rank: index out of range";
  let sb = sent_before t i in
  if c = 0 then sb
  else if i = t.len then Array.unsafe_get t.totals c
  else packed_rank t (c - 1) (i - sb)

(* Write the four packed-lane counts of prefix [0, p) into dst.(1..4),
   given the block decode.  Factored so rank_all and rank_all_pair share
   the field extraction. *)
let[@inline] fields_into t dst ~off ~sb4 ~rem ~s =
  let f1 = s land 0xffff
  and f2 = (s lsr 16) land 0xffff
  and f3 = (s lsr 32) land 0xffff in
  let data = t.data and super = t.super in
  Array.unsafe_set dst 1
    (Array.unsafe_get super sb4 + u16 data off + rem - f1 - f2 - f3);
  Array.unsafe_set dst 2 (Array.unsafe_get super (sb4 + 1) + u16 data (off + 2) + f1);
  Array.unsafe_set dst 3 (Array.unsafe_get super (sb4 + 2) + u16 data (off + 4) + f2);
  Array.unsafe_set dst 4 (Array.unsafe_get super (sb4 + 3) + u16 data (off + 6) + f3)

(* Unchecked single-block decode of the packed prefix [0, p): writes the
   counts of the four payload codes into dst.(1..4).  Callers have
   already validated ranges and handled sentinels and [i = len]. *)
let[@inline] decode_into t dst p =
  let b = p lsr t.bshift in
  let off = b * t.stride in
  let sb4 = (b lsr t.sshift) * 4 in
  let rem = p land (t.bl - 1) in
  let s =
    if t.bshift = 5 then scan32 t.data (off + 8) rem
    else if rem = 0 then 0
    else scan_slow t.data (off + 8) rem
  in
  fields_into t dst ~off ~sb4 ~rem ~s

let[@inline] totals_into t dst =
  for c = 1 to sigma - 1 do
    Array.unsafe_set dst c (Array.unsafe_get t.totals c)
  done

let rank_all t i dst =
  if i < 0 || i > t.len then invalid_arg "Occ.rank_all: index out of range";
  if Array.length dst <> sigma then invalid_arg "Occ.rank_all: bad dst size";
  let sb = sent_before t i in
  Array.unsafe_set dst 0 sb;
  if i = t.len then totals_into t dst else decode_into t dst (i - sb)

(* Branch-free [Bool.to_int (a = b)] for small non-negative ints: equal
   values xor to 0, whose predecessor is the only case with the top bit
   set after a logical shift.  [if a = b then 1 else 0] compiles to a
   data-dependent branch that mispredicts on random codes. *)
let[@inline] eq_ind a b = ((a lxor b) - 1) lsr 62

(* Code (0..sigma-1) of the payload row at packed position [p], read
   straight out of the interleaved block payload. *)
let[@inline] payload_code t p =
  let byte =
    A1.unsafe_get t.data
      (((p lsr t.bshift) * t.stride) + 8 + ((p land (t.bl - 1)) lsr 2))
  in
  ((byte lsr ((p land 3) * 2)) land 3) + 1

(* Precondition (unchecked): [0 <= lo, hi <= length t] and both [dst]
   arrays have length [sigma].  [Fm_index] enforces this at its own
   boundary once per call instead of paying the checks per rank step. *)
let rank_all_pair_unsafe t lo hi los his =
  let sb_lo = sent_before t lo and sb_hi = sent_before t hi in
  Array.unsafe_set los 0 sb_lo;
  Array.unsafe_set his 0 sb_hi;
  let p_lo = lo - sb_lo in
  if hi = lo + 1 then begin
    (* Width-1 interval — the bulk of deep mismatching-tree traffic.
       Decode [lo] once; [rank c (lo+1)] is that plus an indicator of the
       single row's own code, read from the already-hot payload line. *)
    decode_into t los p_lo;
    let code = if sb_hi > sb_lo then 0 else payload_code t p_lo in
    Array.unsafe_set his 1 (Array.unsafe_get los 1 + eq_ind code 1);
    Array.unsafe_set his 2 (Array.unsafe_get los 2 + eq_ind code 2);
    Array.unsafe_set his 3 (Array.unsafe_get los 3 + eq_ind code 3);
    Array.unsafe_set his 4 (Array.unsafe_get los 4 + eq_ind code 4)
  end
  else begin
    (* Two independent decodes; when the endpoints share a block the
       second one hits the cache line the first just pulled in. *)
    if lo = t.len then totals_into t los else decode_into t los p_lo;
    if hi = t.len then totals_into t his else decode_into t his (hi - sb_hi)
  end

let rank_all_pair t lo hi los his =
  if lo < 0 || lo > t.len || hi < 0 || hi > t.len then
    invalid_arg "Occ.rank_all_pair: index out of range";
  if Array.length los <> sigma || Array.length his <> sigma then
    invalid_arg "Occ.rank_all_pair: bad dst size";
  rank_all_pair_unsafe t lo hi los his

let rank_pair t c lo hi =
  if c < 0 || c >= sigma then invalid_arg "Occ.rank_pair: bad character code";
  if lo < 0 || lo > t.len || hi < 0 || hi > t.len then
    invalid_arg "Occ.rank_pair: index out of range";
  let sb_lo = sent_before t lo and sb_hi = sent_before t hi in
  if c = 0 then (sb_lo, sb_hi)
  else begin
    let d = c - 1 in
    let p_lo = lo - sb_lo in
    if hi = lo + 1 then begin
      (* Width-1 interval: one decode, plus an indicator of row [lo]'s
         own code read from the payload line the decode just touched. *)
      let r_lo = packed_rank t d p_lo in
      let code = if sb_hi > sb_lo then 0 else payload_code t p_lo in
      (r_lo, r_lo + eq_ind code c)
    end
    else begin
      let r_lo =
        if lo = t.len then Array.unsafe_get t.totals c else packed_rank t d p_lo
      in
      let r_hi =
        if hi = t.len then Array.unsafe_get t.totals c
        else packed_rank t d (hi - sb_hi)
      in
      (r_lo, r_hi)
    end
  end

(* Same contract as [rank_pair], writing into [dst.(0)]/[dst.(1)] so a
   caller's inner loop (Fm_index.count) allocates nothing per step.
   Precondition (unchecked): [0 <= c < sigma], [0 <= lo, hi <= length t]
   and [Array.length dst >= 2] — a backward-search loop keeps all three
   invariant, so it validates once up front, not per character. *)
let rank_pair_into_unsafe t c lo hi dst =
  let sb_lo = sent_before t lo and sb_hi = sent_before t hi in
  if c = 0 then begin
    Array.unsafe_set dst 0 sb_lo;
    Array.unsafe_set dst 1 sb_hi
  end
  else begin
    let d = c - 1 in
    let p_lo = lo - sb_lo in
    if hi = lo + 1 then begin
      let r_lo = packed_rank t d p_lo in
      let code = if sb_hi > sb_lo then 0 else payload_code t p_lo in
      Array.unsafe_set dst 0 r_lo;
      Array.unsafe_set dst 1 (r_lo + eq_ind code c)
    end
    else begin
      Array.unsafe_set dst 0
        (if lo = t.len then Array.unsafe_get t.totals c else packed_rank t d p_lo);
      Array.unsafe_set dst 1
        (if hi = t.len then Array.unsafe_get t.totals c
         else packed_rank t d (hi - sb_hi))
    end
  end

let rank_pair_into t c lo hi dst =
  if Array.length dst < 2 then invalid_arg "Occ.rank_pair_into: dst too short";
  if c < 0 || c >= sigma then invalid_arg "Occ.rank_pair_into: bad character code";
  if lo < 0 || lo > t.len || hi < 0 || hi > t.len then
    invalid_arg "Occ.rank_pair_into: index out of range";
  rank_pair_into_unsafe t c lo hi dst

let get t row =
  if row < 0 || row >= t.len then invalid_arg "Occ.get: index out of range";
  let s = t.sentinels in
  let n = Array.length s in
  let rec scan j before =
    if j >= n then Some before
    else
      let r = Array.unsafe_get s j in
      if r = row then None
      else if r < row then scan (j + 1) (before + 1)
      else Some before
  in
  match scan 0 0 with
  | None -> 0
  | Some before ->
      let p = row - before in
      let b = p lsr t.bshift in
      let byte =
        A1.unsafe_get t.data ((b * t.stride) + 8 + ((p land (t.bl - 1)) lsr 2))
      in
      ((byte lsr ((p land 3) * 2)) land 3) + 1

let char_rank t row =
  let c = get t row in
  if c = 0 then (0, sent_before t row)
  else (c, packed_rank t (c - 1) (row - sent_before t row))

let counts t = Array.copy t.totals
let rate t = t.req_rate
let block_lanes t = t.bl
let length t = t.len

let space_bytes t =
  Storage.length t.data
  + (8 * (Array.length t.super + Array.length t.sentinels + Array.length t.totals))

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

let check_sentinels sentinels len =
  let k = Array.length sentinels in
  for j = 0 to k - 1 do
    let r = sentinels.(j) in
    if r < 0 || r >= len then invalid_arg "Occ: sentinel row out of range";
    if j > 0 && sentinels.(j - 1) >= r then
      invalid_arg "Occ: sentinel rows must be strictly ascending"
  done

let geometry ~rate ~plen =
  let bl = quantize rate in
  let bshift = log2 bl in
  let sshift = 16 - bshift in
  let stride = 8 + (bl lsr 2) in
  let blocks = (plen lsr bshift) + 1 in
  let nsuper = ((blocks - 1) lsr sshift) + 1 in
  (bl, bshift, sshift, stride, blocks, nsuper)

let of_packed ?(rate = 32) ?(sentinels = [||]) pt =
  let plen = Packed_text.length pt in
  let len = plen + Array.length sentinels in
  check_sentinels sentinels len;
  let bl, bshift, sshift, stride, blocks, nsuper = geometry ~rate ~plen in
  let data = Storage.create (blocks * stride) in
  let super = Array.make (nsuper * 4) 0 in
  let payload = Packed_text.storage pt in
  let pbytes = Storage.length payload in
  let running = Array.make 4 0 in
  for b = 0 to blocks - 1 do
    let sb = b lsr sshift in
    if b land ((1 lsl sshift) - 1) = 0 then
      for d = 0 to 3 do
        super.((sb * 4) + d) <- running.(d)
      done;
    let off = b * stride in
    for d = 0 to 3 do
      set_u16 data (off + (2 * d)) (running.(d) - super.((sb * 4) + d))
    done;
    (* Copy this block's payload and count it through the table. *)
    let src = b * (bl lsr 2) in
    let cnt = min (bl lsr 2) (pbytes - src) in
    if cnt > 0 then begin
      Storage.blit payload src data (off + 8) cnt;
      let lanes = min bl (plen - (b * bl)) in
      let s = ref 0 in
      for j = 0 to cnt - 1 do
        s := !s + tbl.(A1.unsafe_get data (off + 8 + j))
      done;
      let s = !s in
      let f1 = s land 0xffff
      and f2 = (s lsr 16) land 0xffff
      and f3 = (s lsr 32) land 0xffff in
      running.(0) <- running.(0) + lanes - f1 - f2 - f3;
      running.(1) <- running.(1) + f1;
      running.(2) <- running.(2) + f2;
      running.(3) <- running.(3) + f3
    end
  done;
  let totals = Array.make sigma 0 in
  totals.(0) <- Array.length sentinels;
  for d = 0 to 3 do
    totals.(d + 1) <- running.(d)
  done;
  { req_rate = rate; bl; bshift; sshift; stride; data; super; sentinels; len; plen; totals }

let make ?(rate = 32) l =
  ignore (quantize rate);
  let n = String.length l in
  let nsent = ref 0 in
  String.iter (fun c -> if c = Dna.Alphabet.sentinel then incr nsent) l;
  let sentinels = Array.make !nsent 0 in
  let si = ref 0 in
  String.iteri
    (fun i c ->
      if c = Dna.Alphabet.sentinel then begin
        sentinels.(!si) <- i;
        incr si
      end)
    l;
  (* Pack the non-sentinel rows in order. *)
  let pos = ref 0 in
  let next_non_sentinel () =
    while !pos < n && l.[!pos] = Dna.Alphabet.sentinel do
      incr pos
    done;
    let c = l.[!pos] in
    incr pos;
    match Packed_text.code_of_base c with
    | Some d -> d
    | None ->
        invalid_arg (Printf.sprintf "Occ.make: %C is not in {$acgt}" c)
  in
  let pt = Packed_text.init (n - !nsent) (fun _ -> next_non_sentinel ()) in
  of_packed ~rate ~sentinels pt

let to_packed t =
  let out = Storage.create ((t.plen + 3) / 4) in
  let chunk = t.bl lsr 2 in
  let b = ref 0 in
  let copied = ref 0 in
  while !copied < Storage.length out do
    let cnt = min chunk (Storage.length out - !copied) in
    Storage.blit t.data ((!b * t.stride) + 8) out !copied cnt;
    copied := !copied + cnt;
    incr b
  done;
  Packed_text.of_storage out ~len:t.plen

let raw_blocks t = t.data
let raw_super t = t.super

(* Shared front half of the adopting constructors: geometry validation
   plus clearing payload padding beyond the last lane, so table scans
   stay exact even if the file carried dirty bits.  (Mapped storage is
   copy-on-write; the clears never reach the file.)  Returns the
   validated geometry tuple. *)
let adopt_checked ~who ~rate ~len ~sentinels ~data ~super =
  if rate <= 0 then invalid_arg (who ^ ": rate must be positive");
  if len < 0 then invalid_arg (who ^ ": negative length");
  check_sentinels sentinels len;
  let plen = len - Array.length sentinels in
  if plen < 0 then invalid_arg (who ^ ": more sentinels than rows");
  let ((bl, bshift, _, stride, blocks, nsuper) as geom) = geometry ~rate ~plen in
  if Storage.length data <> blocks * stride then
    invalid_arg (who ^ ": block buffer size mismatch");
  if Array.length super <> nsuper * 4 then
    invalid_arg (who ^ ": superblock buffer size mismatch");
  let lb = plen lsr bshift in
  let last_off = (lb * stride) + 8 in
  let rem = plen land (bl - 1) in
  let full = rem lsr 2 and tail = rem land 3 in
  if tail <> 0 then
    A1.set data (last_off + full) (A1.get data (last_off + full) land tmask.(tail));
  for j = full + (if tail = 0 then 0 else 1) to (bl lsr 2) - 1 do
    A1.set data (last_off + j) 0
  done;
  geom

let of_raw ~rate ~len ~sentinels ~blocks:data ~super =
  let bl, bshift, sshift, stride, blocks, _ =
    adopt_checked ~who:"Occ.of_raw" ~rate ~len ~sentinels ~data ~super
  in
  let plen = len - Array.length sentinels in
  (* Verification pass: every stored checkpoint (superblock counters and
     per-block relative counts) must equal a sequential recount of the
     payload.  One table lookup per 4 lanes at memory bandwidth — no
     suffix array, no LF walk, no index reconstruction — and any
     count/payload disagreement anywhere in the buffers is rejected. *)
  let running = Array.make 4 0 in
  for b = 0 to blocks - 1 do
    let sb4 = (b lsr sshift) * 4 in
    let off = b * stride in
    if b land ((1 lsl sshift) - 1) = 0 then
      for d = 0 to 3 do
        if super.(sb4 + d) <> running.(d) then
          invalid_arg "Occ.of_raw: superblock counter disagrees with payload"
      done;
    for d = 0 to 3 do
      if u16 data (off + (2 * d)) <> running.(d) - super.(sb4 + d) then
        invalid_arg "Occ.of_raw: block count disagrees with payload"
    done;
    let lanes = min bl (plen - (b * bl)) in
    if lanes > 0 then begin
      let cnt = (lanes + 3) lsr 2 in
      let s = ref 0 in
      for j = 0 to cnt - 1 do
        s := !s + Array.unsafe_get tbl (A1.unsafe_get data (off + 8 + j))
      done;
      let s = !s in
      let f1 = s land 0xffff
      and f2 = (s lsr 16) land 0xffff
      and f3 = (s lsr 32) land 0xffff in
      running.(0) <- running.(0) + lanes - f1 - f2 - f3;
      running.(1) <- running.(1) + f1;
      running.(2) <- running.(2) + f2;
      running.(3) <- running.(3) + f3
    end
  done;
  let totals = Array.make sigma 0 in
  totals.(0) <- Array.length sentinels;
  for d = 0 to 3 do
    totals.(d + 1) <- running.(d)
  done;
  { req_rate = rate; bl; bshift; sshift; stride; data; super; sentinels; len; plen; totals }

let of_raw_trusted ~rate ~len ~sentinels ~blocks:data ~super ~totals =
  let bl, bshift, sshift, stride, _, _ =
    adopt_checked ~who:"Occ.of_raw_trusted" ~rate ~len ~sentinels ~data ~super
  in
  let plen = len - Array.length sentinels in
  if Array.length totals <> sigma then
    invalid_arg "Occ.of_raw_trusted: bad totals size";
  if totals.(0) <> Array.length sentinels then
    invalid_arg "Occ.of_raw_trusted: sentinel total disagrees with table";
  let sum = ref 0 in
  Array.iter
    (fun c ->
      if c < 0 then invalid_arg "Occ.of_raw_trusted: negative total";
      sum := !sum + c)
    totals;
  if !sum <> len then invalid_arg "Occ.of_raw_trusted: totals do not sum to length";
  {
    req_rate = rate;
    bl;
    bshift;
    sshift;
    stride;
    data;
    super;
    sentinels;
    len;
    plen;
    totals = Array.copy totals;
  }

(* ------------------------------------------------------------------ *)
(* Seed byte-scan reference (oracle for tests and the rank benchmark)   *)

module Reference = struct
  type t = {
    codes : Bytes.t;
    rate : int;
    checkpoints : int array;
    len : int;
  }

  let make ?(rate = 16) l =
    if rate <= 0 then invalid_arg "Occ.Reference.make: rate must be positive";
    let n = String.length l in
    let codes = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.unsafe_set codes i (Char.unsafe_chr (Dna.Alphabet.code l.[i]))
    done;
    let blocks = (n / rate) + 1 in
    let checkpoints = Array.make (blocks * sigma) 0 in
    let running = Array.make sigma 0 in
    for i = 0 to n - 1 do
      if i mod rate = 0 then begin
        let base = i / rate * sigma in
        for c = 0 to sigma - 1 do
          checkpoints.(base + c) <- running.(c)
        done
      end;
      let c = Char.code (Bytes.unsafe_get codes i) in
      running.(c) <- running.(c) + 1
    done;
    if n mod rate = 0 && n > 0 then begin
      let base = n / rate * sigma in
      for c = 0 to sigma - 1 do
        checkpoints.(base + c) <- running.(c)
      done
    end;
    { codes; rate; checkpoints; len = n }

  let rank t c i =
    if c < 0 || c >= sigma then invalid_arg "Occ.Reference.rank: bad character code";
    if i < 0 || i > t.len then invalid_arg "Occ.Reference.rank: index out of range";
    let b = i / t.rate in
    let base = b * t.rate in
    let acc = ref (Array.unsafe_get t.checkpoints ((b * sigma) + c)) in
    let ch = Char.unsafe_chr c in
    for j = base to i - 1 do
      if Bytes.unsafe_get t.codes j = ch then incr acc
    done;
    !acc

  let rank_all t i dst =
    if i < 0 || i > t.len then invalid_arg "Occ.Reference.rank_all: index out of range";
    if Array.length dst <> sigma then invalid_arg "Occ.Reference.rank_all: bad dst size";
    let b = i / t.rate in
    let base = b * t.rate in
    let cp = b * sigma in
    for c = 0 to sigma - 1 do
      Array.unsafe_set dst c (Array.unsafe_get t.checkpoints (cp + c))
    done;
    for j = base to i - 1 do
      let c = Char.code (Bytes.unsafe_get t.codes j) in
      Array.unsafe_set dst c (Array.unsafe_get dst c + 1)
    done

  let rate t = t.rate
  let length t = t.len
  let space_bytes t = (8 * Array.length t.checkpoints) + Bytes.length t.codes
end
