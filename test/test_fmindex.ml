open Fmindex

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool
let int_list = Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* BWT                                                                 *)

let test_bwt_paper_example () =
  (* Paper §III.A: s = acagaca, BWT(s) = acg$caaa. *)
  check string "acagaca" "acg$caaa" (Bwt.of_text "acagaca")

let test_bwt_empty () = check string "empty" "$" (Bwt.of_text "")

let test_bwt_inverse_paper () =
  check string "inverse of paper example" "acagaca" (Bwt.inverse "acg$caaa")

let prop_bwt_roundtrip =
  Test_util.qtest ~count:300 "inverse . of_text = id" (Test_util.dna_gen ~hi:300 ())
    (fun s -> Bwt.inverse (Bwt.of_text s) = s)

let test_bwt_inverse_rejects () =
  let expect_invalid l =
    match Bwt.inverse l with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid "acgt";
  expect_invalid "a$c$"

let test_bwt_is_permutation () =
  let s = "gattacagattaca" in
  let l = Bwt.of_text s in
  let sorted x = List.sort compare (List.init (String.length x) (String.get x)) in
  check bool "permutation of s$" true (sorted l = sorted (s ^ "$"))

(* ------------------------------------------------------------------ *)
(* Occ / rankall                                                       *)

let naive_rank l c i =
  let count = ref 0 in
  for j = 0 to i - 1 do
    if Dna.Alphabet.code l.[j] = c then incr count
  done;
  !count

let test_occ_matches_naive () =
  let st = Random.State.make [| 7 |] in
  List.iter
    (fun rate ->
      let s = Test_util.random_dna st 500 in
      let l = Bwt.of_text s in
      let occ = Occ.make ~rate l in
      for i = 0 to String.length l do
        for c = 0 to Dna.Alphabet.sigma - 1 do
          check int
            (Printf.sprintf "rank rate=%d c=%d i=%d" rate c i)
            (naive_rank l c i) (Occ.rank occ c i)
        done
      done)
    [ 1; 3; 16; 64; 128; 1000 ]

let test_occ_word_boundaries () =
  (* Indices straddling 2-bit lane words, block edges and the 65536-lane
     superblock edge, on a text long enough to have two superblocks. *)
  let st = Random.State.make [| 29 |] in
  let s = Test_util.random_dna st 66_000 in
  let l = Bwt.of_text s in
  let occ = Occ.make ~rate:32 l in
  let len = String.length l in
  let probes =
    List.concat_map
      (fun base -> [ base - 1; base; base + 1 ])
      [ 1; 31; 32; 64; 4096; 65504; 65536; 65568; len - 31; len ]
  in
  List.iter
    (fun i ->
      if i >= 0 && i <= len then
        for c = 0 to Dna.Alphabet.sigma - 1 do
          check int
            (Printf.sprintf "boundary rank c=%d i=%d" c i)
            (naive_rank l c i) (Occ.rank occ c i)
        done)
    probes

let prop_occ_matches_reference =
  (* The packed kernel against the seed's byte-scan implementation, kept
     as [Occ.Reference]: every rank at every index must agree. *)
  Test_util.qtest ~count:60 "packed rank = Reference rank"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:1 ~hi:260 ()) (int_range 1 80))
    (fun (s, rate) ->
      let l = Bwt.of_text s in
      let packed = Occ.make ~rate l in
      let reference = Occ.Reference.make ~rate l in
      let ok = ref true in
      for i = 0 to String.length l do
        for c = 0 to Dna.Alphabet.sigma - 1 do
          if Occ.rank packed c i <> Occ.Reference.rank reference c i then ok := false
        done
      done;
      !ok)

let test_occ_rank_all_pair () =
  let st = Random.State.make [| 31 |] in
  let s = Test_util.random_dna st 700 in
  let l = Bwt.of_text s in
  let occ = Occ.make ~rate:64 l in
  let len = String.length l in
  let sigma = Dna.Alphabet.sigma in
  let los = Array.make sigma 0 and his = Array.make sigma 0 in
  for _ = 1 to 500 do
    let lo = Random.State.int st (len + 1) in
    let hi = lo + Random.State.int st (len + 1 - lo) in
    Occ.rank_all_pair occ lo hi los his;
    for c = 0 to sigma - 1 do
      check int (Printf.sprintf "pair lo c=%d lo=%d" c lo) (Occ.rank occ c lo) los.(c);
      check int (Printf.sprintf "pair hi c=%d hi=%d" c hi) (Occ.rank occ c hi) his.(c)
    done
  done

let test_occ_get_char_rank () =
  let st = Random.State.make [| 37 |] in
  let s = Test_util.random_dna st 400 in
  let l = Bwt.of_text s in
  let occ = Occ.make ~rate:32 l in
  for row = 0 to String.length l - 1 do
    let expected = Dna.Alphabet.code l.[row] in
    check int (Printf.sprintf "get row=%d" row) expected (Occ.get occ row);
    let c, r = Occ.char_rank occ row in
    check int (Printf.sprintf "char_rank code row=%d" row) expected c;
    check int (Printf.sprintf "char_rank rank row=%d" row) (naive_rank l c row) r
  done

let test_occ_validation () =
  let l = Bwt.of_text "acgt" in
  (match Occ.make ~rate:0 l with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  let occ = Occ.make l in
  (match Occ.rank occ 9 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad code");
  match Occ.rank occ 1 100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad index"

(* ------------------------------------------------------------------ *)
(* FM-index                                                            *)

let test_fm_paper_search () =
  (* Paper §III.A: searching aca in acagaca$ yields two occurrences. *)
  let fm = Fm_index.build "acagaca" in
  check int "count aca" 2 (Fm_index.count fm "aca");
  check int_list "positions" [ 0; 4 ] (Fm_index.find_all fm "aca")

let test_fm_empty_pattern () =
  let fm = Fm_index.build "acgt" in
  check int "empty pattern counts all rows" 5 (Fm_index.count fm "")

let test_fm_absent () =
  let fm = Fm_index.build "aaaa" in
  check int "absent" 0 (Fm_index.count fm "c");
  check int_list "absent positions" [] (Fm_index.find_all fm "ct")

let test_fm_longer_than_text () =
  let fm = Fm_index.build "acg" in
  check int "too long" 0 (Fm_index.count fm "acgt")

let prop_fm_equals_naive =
  Test_util.qtest ~count:300 "find_all = naive"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:1 ~hi:250 ()) (Test_util.dna_gen ~lo:1 ~hi:8 ()))
    (fun (text, pattern) ->
      let fm = Fm_index.build text in
      Fm_index.find_all fm pattern = Stringmatch.Naive.find_all ~pattern ~text)

let prop_fm_sampling_rates =
  Test_util.qtest ~count:100 "locate independent of sa_rate"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:4 ~hi:150 ()) (Test_util.dna_gen ~lo:1 ~hi:4 ()))
    (fun (text, pattern) ->
      let a = Fm_index.build ~sa_rate:1 text in
      let b = Fm_index.build ~sa_rate:7 text in
      let c = Fm_index.build ~sa_rate:1000 text in
      Fm_index.find_all a pattern = Fm_index.find_all b pattern
      && Fm_index.find_all b pattern = Fm_index.find_all c pattern)

let test_fm_extend_steps_follow_paper () =
  (* Reproduce the three-step example of §III.A for r = aca over
     s = acagaca: the interval sizes are 4, 2, 2. *)
  let fm = Fm_index.build "acagaca" in
  let iv0 = Option.get (Fm_index.interval_of_char fm (Dna.Alphabet.code 'a')) in
  check int "F_a size" 4 (snd iv0 - fst iv0);
  let iv1 = Option.get (Fm_index.extend fm (Dna.Alphabet.code 'c') iv0) in
  check int "c-extension size" 2 (snd iv1 - fst iv1);
  let iv2 = Option.get (Fm_index.extend fm (Dna.Alphabet.code 'a') iv1) in
  check int "a-extension size" 2 (snd iv2 - fst iv2)

let test_fm_empty_text () =
  let fm = Fm_index.build "" in
  check int "length" 0 (Fm_index.length fm);
  check string "bwt" "$" (Fm_index.bwt fm);
  check int "no occurrences" 0 (Fm_index.count fm "a");
  check int_list "empty pattern row" [ 0 ] (Fm_index.locate fm (Fm_index.whole fm))

let test_fm_rejects_bad_text () =
  match Fm_index.build "acgn" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_fm_occ_rates_agree () =
  let st = Random.State.make [| 13 |] in
  let text = Test_util.random_dna st 400 in
  let pattern = String.sub text 100 5 in
  let a = Fm_index.build ~occ_rate:1 text in
  let b = Fm_index.build ~occ_rate:200 text in
  check int_list "occ rate does not change answers" (Fm_index.find_all a pattern)
    (Fm_index.find_all b pattern)

let test_fm_space_report () =
  let n = 1000 in
  let fm = Fm_index.build (Test_util.random_dna (Random.State.make [| 1 |]) n) in
  let report = Fm_index.space_report fm in
  List.iter (fun (_, v) -> check bool "positive" true (v > 0)) report;
  (* Exact accounting of the packed layout, from first principles.  At
     occ_rate 32 the 1000 payload bases (sentinel held out-of-band) pack
     into ceil(1000/32) = 32 interleaved blocks of 8 count bytes +
     32/4 payload bytes; one superblock of 4 counters, 1 sentinel row and
     sigma totals round out the rank structure. *)
  let occ_bytes = (32 * (8 + (32 / 4))) + (8 * (4 + 1 + 5)) in
  check int "packed rank structure" occ_bytes (List.assoc "packed bwt + rank blocks" report);
  (* Mark bitvector: one bit per BWT row, plus a rank-directory entry per
     64-row chunk. *)
  let marks_bytes = ((n + 8) / 8) + (8 * ((n + 1 + 63) / 64)) in
  check int "sa marks" marks_bytes (List.assoc "sa marks (bitvector + rank dir)" report);
  (* Samples: text positions divisible by 16 (63 of them) plus row 0. *)
  check int "sa samples" (8 * 64) (List.assoc "sa samples" report);
  check int "c array" (8 * Dna.Alphabet.sigma) (List.assoc "c array" report);
  check int "packed text" ((n + 3) / 4) (List.assoc "packed text (2 bit/base)" report);
  (* The packed index beats the seed's byte-per-char BWT + codes table by
     construction: the whole rank structure fits in well under n bytes. *)
  check bool "rank structure under 1 byte/base" true (occ_bytes < n);
  (* No double counting: the report's sum is exactly the component sum. *)
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 report in
  check int "entries sum" (occ_bytes + marks_bytes + (8 * 64) + 40 + ((n + 3) / 4)) total

let test_fm_pattern_validation () =
  (* Satellite: searching uppercase or non-ACGT patterns must not raise.
     Case folds to the lowercase alphabet; anything else simply does not
     occur in an acgt text. *)
  let fm = Fm_index.build "acagaca" in
  check int "uppercase folds" 2 (Fm_index.count fm "ACA");
  check int_list "uppercase find_all" [ 0; 4 ] (Fm_index.find_all fm "AcA");
  check int "n never matches" 0 (Fm_index.count fm "acn");
  check int "sentinel char" 0 (Fm_index.count fm "$");
  check bool "search invalid is None" true (Fm_index.search fm "ac!g" = None);
  check int_list "find_all invalid" [] (Fm_index.find_all fm "nnn");
  check int_list "find_all space" [] (Fm_index.find_all fm "a a")

let test_fm_locate_into () =
  let st = Random.State.make [| 43 |] in
  let text = Test_util.random_dna st 300 in
  let fm = Fm_index.build ~sa_rate:8 text in
  (match Fm_index.search fm (String.sub text 50 3) with
  | None -> Alcotest.fail "substring not found"
  | Some (lo, hi) ->
      let buf = Array.make (hi - lo) (-1) in
      Fm_index.locate_into fm (lo, hi) buf;
      Array.sort Int.compare buf;
      check int_list "locate_into = locate" (Fm_index.locate fm (lo, hi)) (Array.to_list buf));
  (match Fm_index.locate_into fm (0, 2) [| 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short buffer accepted");
  match Fm_index.locate_into fm (-1, 2) (Array.make 4 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad interval accepted"

let () =
  Alcotest.run "fmindex"
    [
      ( "bwt",
        [
          Alcotest.test_case "paper example" `Quick test_bwt_paper_example;
          Alcotest.test_case "empty" `Quick test_bwt_empty;
          Alcotest.test_case "inverse paper" `Quick test_bwt_inverse_paper;
          Alcotest.test_case "inverse rejects" `Quick test_bwt_inverse_rejects;
          Alcotest.test_case "is permutation" `Quick test_bwt_is_permutation;
          prop_bwt_roundtrip;
        ] );
      ( "occ",
        [
          Alcotest.test_case "matches naive at all rates" `Quick test_occ_matches_naive;
          Alcotest.test_case "word and superblock boundaries" `Quick test_occ_word_boundaries;
          Alcotest.test_case "rank_all_pair = two ranks" `Quick test_occ_rank_all_pair;
          Alcotest.test_case "get / char_rank" `Quick test_occ_get_char_rank;
          Alcotest.test_case "validation" `Quick test_occ_validation;
          prop_occ_matches_reference;
        ] );
      ( "fm_index",
        [
          Alcotest.test_case "paper search" `Quick test_fm_paper_search;
          Alcotest.test_case "empty pattern" `Quick test_fm_empty_pattern;
          Alcotest.test_case "absent pattern" `Quick test_fm_absent;
          Alcotest.test_case "pattern longer than text" `Quick test_fm_longer_than_text;
          Alcotest.test_case "paper extend steps" `Quick test_fm_extend_steps_follow_paper;
          Alcotest.test_case "rejects bad text" `Quick test_fm_rejects_bad_text;
          Alcotest.test_case "empty text" `Quick test_fm_empty_text;
          Alcotest.test_case "occ rates agree" `Quick test_fm_occ_rates_agree;
          Alcotest.test_case "space report" `Quick test_fm_space_report;
          Alcotest.test_case "pattern validation" `Quick test_fm_pattern_validation;
          Alcotest.test_case "locate_into" `Quick test_fm_locate_into;
          Alcotest.test_case "bench parity smoke (packed vs seed model)" `Quick (fun () ->
              Rank_locate.parity_smoke ());
          prop_fm_equals_naive;
          prop_fm_sampling_rates;
        ] );
    ]
