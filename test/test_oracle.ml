(* The differential fuzzing oracle: corpus replay (deterministic), a
   bounded fixed-seed fuzz smoke run, shrinker sanity against
   deliberately broken engines, degenerate-budget uniformity across all
   engines, the corpus text format, and index save/load feeding a fuzz
   replay. *)

open Core

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let hits = Alcotest.(list (pair int int))

(* Under `dune runtest` the cwd is the test directory (corpus/* declared
   as deps); under a bare `dune exec` it is the workspace root. *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

(* ------------------------------------------------------------------ *)
(* Corpus replay: every checked-in reproducer must keep all engines in
   agreement, forever. *)

let test_corpus_replay () =
  let results = Oracle.replay_dir corpus_dir in
  check bool "corpus is nonempty" true (List.length results >= 5);
  List.iter
    (fun (path, divs) ->
      match divs with
      | [] -> ()
      | d :: _ -> Alcotest.failf "%s: %s" path (Format.asprintf "%a" Oracle.pp_divergence d))
    results

(* ------------------------------------------------------------------ *)
(* Bounded fixed-seed fuzz smoke: the tier-1 incarnation of `kmm fuzz`.
   Small sizes keep it well under the runtest budget. *)

let test_fuzz_smoke () =
  let r = Oracle.fuzz ~seed:42 ~iters:400 ~max_text:120 () in
  (match r.Oracle.divergences with
  | [] -> ()
  | d :: _ -> Alcotest.failf "fuzz smoke: %s" (Format.asprintf "%a" Oracle.pp_divergence d));
  check int "iterations all ran" 400 r.Oracle.iters_run;
  check int "every generator class drawn"
    (List.length Oracle.all_classes)
    (List.length r.Oracle.by_class)

(* ------------------------------------------------------------------ *)
(* Shrinker sanity: broken engines must be caught and minimized. *)

let reproducer_size c = String.length c.Oracle.text + String.length c.Oracle.pattern

let test_broken_engine_caught_and_shrunk () =
  (* Drops every hit at position 0: a boundary bug archetype. *)
  let broken =
    {
      Oracle.sub_name = "broken-drops-pos0";
      run = (fun _ c -> Some (List.filter (fun (p, _) -> p <> 0) (Oracle.reference c)));
    }
  in
  let r = Oracle.fuzz ~subjects:[ broken ] ~seed:5 ~iters:300 () in
  match r.Oracle.divergences with
  | [ d ] ->
      check string "subject named" "broken-drops-pos0" d.Oracle.div_subject;
      check bool "shrunk to <= 32 chars" true (reproducer_size d.Oracle.div_case <= 32);
      (* this minimal case is checked in as corpus/shrunk-broken-drops-pos0.case *)
      check bool "still failing after shrink" true
        (Oracle.reference d.Oracle.div_case
        <> List.filter (fun (p, _) -> p <> 0) (Oracle.reference d.Oracle.div_case))
  | ds -> Alcotest.failf "expected exactly one divergence, got %d" (List.length ds)

let test_broken_distance_engine_shrunk () =
  (* Off-by-one on reported distances — results keep the right
     positions, so only the distance comparison can catch it. *)
  let broken =
    {
      Oracle.sub_name = "broken-distance";
      run = (fun _ c -> Some (List.map (fun (p, d) -> (p, d + 1)) (Oracle.reference c)));
    }
  in
  let r = Oracle.fuzz ~subjects:[ broken ] ~seed:11 ~iters:300 () in
  match r.Oracle.divergences with
  | [ d ] -> check bool "shrunk to <= 32 chars" true (reproducer_size d.Oracle.div_case <= 32)
  | ds -> Alcotest.failf "expected exactly one divergence, got %d" (List.length ds)

let test_raising_engine_recorded () =
  let raising =
    { Oracle.sub_name = "broken-raises"; run = (fun _ _ -> failwith "engine exploded") }
  in
  let c = Oracle.make_case ~text:"acgt" ~pattern:"ac" ~k:1 in
  match Oracle.check_case ~subjects:[ raising ] c with
  | [ { Oracle.got = Oracle.Engine_error msg; _ } ] ->
      check bool "message kept" true
        (Stringmatch.Naive.find_all ~pattern:"exploded" ~text:msg <> [])
  | _ -> Alcotest.fail "expected one Engine_error divergence"

(* ------------------------------------------------------------------ *)
(* Degenerate budgets: k >= m answers every window at its true distance,
   identically for every engine (and clamps protect k = max_int). *)

let test_k_ge_m_uniform () =
  let text = "acgtacgtgg" in
  let idx = Kmismatch.build_index text in
  let n = String.length text in
  List.iter
    (fun (pattern, k) ->
      let m = String.length pattern in
      let expected = Stringmatch.Hamming.search ~pattern ~text ~k in
      (* the reference itself must list every window position *)
      check
        Alcotest.(list int)
        (Printf.sprintf "all windows (m=%d k=%d)" m k)
        (List.init (n - m + 1) (fun i -> i))
        (List.map fst expected);
      List.iter
        (fun engine ->
          check hits
            (Printf.sprintf "%s m=%d k=%d" (Kmismatch.engine_name engine) m k)
            expected
            (Kmismatch.search idx ~engine ~pattern ~k))
        (Kmismatch.all_engines ()))
    [ ("acg", 3); ("acg", 7); ("tttt", 4); ("tttt", max_int); ("acgtacgtgg", 10) ]

(* ------------------------------------------------------------------ *)
(* Corpus format *)

let test_corpus_format_roundtrip () =
  let cases =
    [
      Oracle.make_case ~text:"acgt" ~pattern:"ac" ~k:0;
      Oracle.make_case ~text:"" ~pattern:"a" ~k:3;
      Oracle.make_case ~text:"aaaa" ~pattern:"tttt" ~k:max_int;
    ]
  in
  List.iter
    (fun c ->
      match Oracle.corpus_of_string (Oracle.corpus_to_string ~comment:[ "roundtrip" ] c) with
      | Ok c' -> check bool "case survives" true (c = c')
      | Error msg -> Alcotest.failf "roundtrip failed: %s" msg)
    cases

let test_corpus_format_errors () =
  let expect_err doc =
    match Oracle.corpus_of_string doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed doc %S" doc
  in
  expect_err "pattern ac\ntext acgt\n";          (* missing k *)
  expect_err "k 1\ntext acgt\n";                 (* missing pattern *)
  expect_err "k 1\npattern ac\n";                (* missing text *)
  expect_err "k x\npattern ac\ntext acgt\n";     (* bad int *)
  expect_err "k 1\npattern ac\ntext acgt\nbudget 3\n" (* unknown key *);
  expect_err "k -1\npattern ac\ntext acgt\n";    (* negative k *)
  expect_err "k 1\npattern axc\ntext acgt\n";    (* non-ACGT *)
  expect_err "k 1\npattern\ntext acgt\n" (* empty pattern *)

let test_corpus_tolerates_comments_and_crlf () =
  match Oracle.corpus_of_string "# c1\r\n\r\nk 1\r\npattern AC\r\ntext ACGT\r\n# c2\r\n" with
  | Ok c ->
      check string "text normalized" "acgt" c.Oracle.text;
      check string "pattern normalized" "ac" c.Oracle.pattern;
      check int "k" 1 c.Oracle.k
  | Error msg -> Alcotest.failf "CRLF doc rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Persistence: a saved/loaded index must answer a corpus replay exactly
   like the freshly built one. *)

let test_save_load_then_replay () =
  let case = Oracle.load_case (Filename.concat corpus_dir "degenerate-k-ge-m.case") in
  let idx = Kmismatch.build_index case.Oracle.text in
  let path = Filename.temp_file "oracle" ".fmi" in
  Kmismatch.save_index idx path;
  let idx' = Kmismatch.load_index path in
  Sys.remove path;
  check string "text round-trips" case.Oracle.text (Kmismatch.text idx');
  let expected = Oracle.reference case in
  List.iter
    (fun engine ->
      check hits
        ("loaded index: " ^ Kmismatch.engine_name engine)
        expected
        (Kmismatch.search idx' ~engine ~pattern:case.Oracle.pattern ~k:case.Oracle.k))
    (Kmismatch.all_engines ())

(* ------------------------------------------------------------------ *)
(* Generator and shrinker properties *)

let prop_generate_valid =
  Test_util.qtest ~count:300 "generated cases satisfy the case invariants"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let c = Oracle.generate ~max_text:80 st in
      String.length c.Oracle.pattern >= 1
      && c.Oracle.k >= 0
      && String.for_all (fun ch -> String.contains "acgt" ch) c.Oracle.text
      && String.for_all (fun ch -> String.contains "acgt" ch) c.Oracle.pattern)

let prop_shrink_preserves_failure =
  Test_util.qtest ~count:50 "shrink output still fails its predicate"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let c = Oracle.generate ~max_text:60 st in
      (* a predicate unrelated to matching: text contains pattern's first
         character; cheap, and failure-preservation is what matters *)
      let pred c =
        c.Oracle.pattern <> ""
        && String.contains c.Oracle.text c.Oracle.pattern.[0]
      in
      (not (pred c))
      ||
      let c' = Oracle.shrink pred c in
      pred c' && reproducer_size c' <= reproducer_size c)

let () =
  Alcotest.run "oracle"
    [
      ( "corpus",
        [
          Alcotest.test_case "replay" `Quick test_corpus_replay;
          Alcotest.test_case "format roundtrip" `Quick test_corpus_format_roundtrip;
          Alcotest.test_case "format errors" `Quick test_corpus_format_errors;
          Alcotest.test_case "comments and CRLF" `Quick test_corpus_tolerates_comments_and_crlf;
        ] );
      ("fuzz", [ Alcotest.test_case "fixed-seed smoke" `Quick test_fuzz_smoke ]);
      ( "shrinker",
        [
          Alcotest.test_case "drops-pos0 caught" `Quick test_broken_engine_caught_and_shrunk;
          Alcotest.test_case "distance bug caught" `Quick test_broken_distance_engine_shrunk;
          Alcotest.test_case "exceptions recorded" `Quick test_raising_engine_recorded;
          prop_shrink_preserves_failure;
        ] );
      ("degenerate_budget", [ Alcotest.test_case "k >= m uniform" `Quick test_k_ge_m_uniform ]);
      ("persistence", [ Alcotest.test_case "save/load then replay" `Quick test_save_load_then_replay ]);
      ("generators", [ prop_generate_valid ]);
    ]
