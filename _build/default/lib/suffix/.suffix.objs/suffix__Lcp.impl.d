lib/suffix/lcp.ml: Array String Suffix_array
