lib/stringmatch/naive.ml: String
