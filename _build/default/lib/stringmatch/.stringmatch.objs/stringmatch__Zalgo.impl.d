lib/stringmatch/zalgo.ml: Array List String
